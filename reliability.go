package jitgc

import (
	"fmt"

	"jitgc/internal/array"
	"jitgc/internal/nand"
)

// reliabilityRates is the -exp reliability fault-rate sweep: per-operation
// NAND failure probabilities from none to aggressive. Realistic raw bit
// error rates sit near the low end; the top rate stresses the recovery
// policies hard enough that block retirements show up within a short run.
var reliabilityRates = []float64{0, 1e-4, 1e-3, 5e-3}

// reliabilityPolicies spans the paper's fixed-reserve baselines and JIT-GC:
// the recovery layer must be policy-agnostic, so every policy has to
// survive every rate with the same retirement bookkeeping.
var reliabilityPolicies = []PolicySpec{Lazy(), Aggressive(), JIT()}

// reliability runs the fault-injection experiment in two parts.
//
// Part 1 sweeps fault rate × BGC policy on YCSB: every cell arms the
// seeded NAND fault model at one rate on reads, programs and erases alike,
// runs the benchmark to completion under the FTL's recovery policies, and
// reports throughput beside the recovery outcomes (injected faults, blocks
// retired, read retries, unrecoverable reads). The rate-0 row doubles as
// the control: it must match a run without any fault plumbing.
//
// Part 2 kills one member of a two-device array mid-run — a raw injector
// fails every program on member 1 once preconditioning is done, which is
// fatal (raw injectors bypass recovery) and degrades the member — and
// reports the merged survivor record: requests striped onto the dead
// member fail fast, the survivor keeps serving its own.
func reliability(opt Options) ([]Table, error) {
	sweep := Table{
		Title: "Reliability sweep: YCSB under injected NAND faults (rate applies to reads, programs and erases; unrecoverable reads need 4 consecutive failures on one page, rate^4-rare by design)",
		Columns: []string{"fault rate", "policy", "IOPS", "WAF", "FGC",
			"injected", "retired", "read retries", "unrecoverable"},
	}
	nRates, nPols := len(reliabilityRates), len(reliabilityPolicies)
	slots := make([]Results, nRates*nPols)
	err := runGrid(opt, len(slots), func(i int) error {
		rate, pol := reliabilityRates[i/nPols], reliabilityPolicies[i%nPols]
		cellOpt := opt
		cellOpt.FaultRate = rate
		res, err := Run("YCSB", pol, cellOpt)
		if err != nil {
			return fmt.Errorf("reliability %.0e/%s: %w", rate, pol.Kind, err)
		}
		slots[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range slots {
		sweep.AddRow(
			fmt.Sprintf("%.0e", reliabilityRates[i/nPols]),
			res.Policy,
			fmt.Sprintf("%.0f", res.IOPS),
			fmt.Sprintf("%.3f", res.WAF),
			fmt.Sprintf("%d", res.FGCInvocations),
			fmt.Sprintf("%d", res.InjectedFaults),
			fmt.Sprintf("%d", res.RetiredBlocks),
			fmt.Sprintf("%d", res.ReadRetries),
			fmt.Sprintf("%d", res.UnrecoverableReads))
	}
	degraded, err := reliabilityDegraded(opt)
	if err != nil {
		return nil, err
	}
	return []Table{sweep, degraded}, nil
}

// reliabilityDegraded is part 2: the two-device degraded-array run.
func reliabilityDegraded(opt Options) (Table, error) {
	opt = opt.withDefaults()
	cfg, ws := opt.simConfig()
	arr, err := array.New(array.Config{
		Devices: 2,
		Device:  cfg,
	}, JIT().Factory())
	if err != nil {
		return Table{}, err
	}

	// Member 1's programs all fail once preconditioning (which must
	// succeed — a dead device cannot be filled) is past: a raw injector is
	// fatal, so the first failed program degrades the member.
	fm := nand.NewFaultModel(nand.FaultConfig{Seed: 1})
	arr.Device(1).FTL().Device().SetFaultInjector(fm)
	fm.FailFrom(nand.OpProgram, cfg.PreconditionPages+64)

	reqs, _, err := GenerateStream("YCSB", Options{
		Seed: opt.Seed, Ops: opt.Ops, WorkingSetPages: 2 * ws,
	})
	if err != nil {
		return Table{}, err
	}
	res, err := arr.RunClosedLoop(reqs)
	if err != nil {
		return Table{}, fmt.Errorf("reliability degraded array: %w", err)
	}

	t := Table{
		Title:   "Degraded array: 2 devices, member 1 loses every program mid-run (fatal, no recovery)",
		Columns: []string{"scope", "status", "requests", "host programs", "IOPS"},
	}
	for i, r := range res.PerDevice {
		status := "healthy"
		if arr.Degraded(i) != nil {
			status = "degraded"
		}
		t.AddRow(fmt.Sprintf("device %d", i), status,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.HostPrograms),
			fmt.Sprintf("%.0f", r.IOPS))
	}
	t.AddRow("array", fmt.Sprintf("%d degraded", len(res.Degraded)),
		fmt.Sprintf("%d served + %d failed fast", res.Array.Requests, res.FailedRequests),
		fmt.Sprintf("%d", res.Array.HostPrograms),
		fmt.Sprintf("%.0f", res.Array.IOPS))
	if len(res.Degraded) != 1 {
		t.AddNote("expected exactly one degraded member, got %v", res.Degraded)
	}
	return t, nil
}
