// Command benchjson converts `go test -bench` text output into a JSON
// summary, so CI can archive benchmark smoke runs as machine-readable
// artifacts (make bench → BENCH_pr6.json) without external tooling.
//
// With -gate it instead compares the run against a checked-in baseline and
// fails on regression. Allocation counts and bytes/op are near-deterministic
// here (the simulations are seeded), so their tolerance bands are tight; wall
// time is noisy on shared CI machines, so its band is a wide catastrophe
// detector (an O(1) path decaying to O(n) trips it, scheduler jitter does
// not). A benchmark present in the baseline but missing from the run is a
// failure — deleting a benchmark must be an explicit baseline update.
//
// Custom b.ReportMetric series (anything that is not ns/op, B/op, or
// allocs/op) are archived in the JSON under "metrics". They are gated only
// when named by a repeatable -metric unit=ratio,slack flag — e.g.
// `-metric bytes/lpage=1.10,1.0` fails the build when the per-logical-page
// metadata footprint grows 10% past the baseline.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./ci/benchjson -out BENCH.json
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json -update-baseline
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json -metric bytes/lpage=1.10,1.0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "-", "benchmark text output to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	gate := flag.Bool("gate", false, "compare against -baseline instead of emitting JSON; exit 1 on regression")
	baseline := flag.String("baseline", "", "baseline JSON file for -gate")
	update := flag.Bool("update-baseline", false, "with -gate: overwrite the baseline with this run and exit 0")
	nsRatio := flag.Float64("ns-ratio", 4.0, "gate: fail when ns/op exceeds baseline*ratio+slack")
	nsSlack := flag.Float64("ns-slack", 200, "gate: absolute ns/op slack added to the ratio band")
	bRatio := flag.Float64("bytes-ratio", 1.15, "gate: fail when B/op exceeds baseline*ratio+slack")
	bSlack := flag.Float64("bytes-slack", 512, "gate: absolute B/op slack added to the ratio band")
	aRatio := flag.Float64("allocs-ratio", 1.10, "gate: fail when allocs/op exceeds baseline*ratio+slack")
	aSlack := flag.Float64("allocs-slack", 2, "gate: absolute allocs/op slack added to the ratio band")
	metrics := metricBands{}
	flag.Var(metrics, "metric", "gate a custom b.ReportMetric unit as unit=ratio,slack "+
		"(e.g. -metric bytes/lpage=1.10,1.0); repeatable")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	if *gate {
		if *baseline == "" {
			log.Fatal("-gate requires -baseline")
		}
		if *update {
			if err := writeJSON(*baseline, results); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s updated with %d benchmarks\n", *baseline, len(results))
			return
		}
		base, err := readBaseline(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		tol := tolerances{
			ns:      band{*nsRatio, *nsSlack},
			bytes:   band{*bRatio, *bSlack},
			allocs:  band{*aRatio, *aSlack},
			metrics: metrics,
		}
		failures, notes := compare(base, results, tol)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "benchjson: note: %s\n", n)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", f)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s (rerun with -update-baseline after an intentional change)\n",
				len(failures), *baseline)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within tolerance of %s\n", len(results), *baseline)
		return
	}

	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}

// band is one tolerance: the current value may not exceed
// baseline*Ratio + Slack. The slack term keeps tiny baselines from turning
// the ratio into a zero-tolerance gate (0 B/op * any ratio is still 0).
type band struct {
	Ratio float64
	Slack float64
}

func (b band) limit(base float64) float64 { return base*b.Ratio + b.Slack }

// metricBands maps a custom b.ReportMetric unit (e.g. "bytes/lpage") to
// its gate band. It implements flag.Value so -metric is repeatable.
type metricBands map[string]band

func (m metricBands) String() string {
	var parts []string
	for unit, b := range m {
		parts = append(parts, fmt.Sprintf("%s=%g,%g", unit, b.Ratio, b.Slack))
	}
	return strings.Join(parts, " ")
}

func (m metricBands) Set(s string) error {
	unit, spec, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=ratio,slack, got %q", s)
	}
	ratioStr, slackStr, ok := strings.Cut(spec, ",")
	if !ok {
		return fmt.Errorf("want unit=ratio,slack, got %q", s)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil {
		return fmt.Errorf("ratio in %q: %v", s, err)
	}
	slack, err := strconv.ParseFloat(slackStr, 64)
	if err != nil {
		return fmt.Errorf("slack in %q: %v", s, err)
	}
	m[unit] = band{ratio, slack}
	return nil
}

// tolerances groups the per-metric bands. metrics gates custom units from
// Result.Metrics; units without an entry are archived but not gated.
type tolerances struct {
	ns, bytes, allocs band
	metrics           metricBands
}

// compare checks every baseline benchmark against the current run. It
// returns regression messages (gate failures) and informational notes
// (benchmarks new in this run, which only an -update-baseline records).
func compare(base, cur []Result, tol tolerances) (failures, notes []string) {
	curByName := make(map[string]Result, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base))
	for _, b := range base {
		baseNames[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", b.Name))
			continue
		}
		check := func(metric string, baseV, curV float64, band band) {
			if limit := band.limit(baseV); curV > limit {
				failures = append(failures, fmt.Sprintf("%s: %s %.6g exceeds %.6g (baseline %.6g × %g + %g)",
					b.Name, metric, curV, limit, baseV, band.Ratio, band.Slack))
			}
		}
		check("ns/op", b.NsPerOp, c.NsPerOp, tol.ns)
		check("B/op", b.BytesPerOp, c.BytesPerOp, tol.bytes)
		check("allocs/op", b.AllocsOp, c.AllocsOp, tol.allocs)
		for unit, band := range tol.metrics {
			baseV, inBase := b.Metrics[unit]
			if !inBase {
				continue // unit not recorded for this benchmark
			}
			curV, inCur := c.Metrics[unit]
			if !inCur {
				failures = append(failures, fmt.Sprintf("%s: gated metric %s in baseline but missing from this run", b.Name, unit))
				continue
			}
			check(unit, baseV, curV, band)
		}
	}
	for _, c := range cur {
		if !baseNames[c.Name] {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (run -update-baseline to record it)", c.Name))
		}
	}
	return failures, notes
}

// readBaseline loads a JSON file previously written by this tool.
func readBaseline(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(b, &results); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return results, nil
}

// writeJSON writes results as indented JSON to path.
func writeJSON(path string, results []Result) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// parse extracts Benchmark lines of the form
//
//	BenchmarkName-8   12  93451 ns/op  4.5 req/s  120 B/op  3 allocs/op
//
// Pairs are (value, unit); unknown units land in Metrics.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "BenchmarkX ... FAIL" line
		}
		name := fields[0]
		if s := lastDashSuffix(name); s != "" {
			name = strings.TrimSuffix(name, "-"+s)
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// lastDashSuffix returns the trailing -N GOMAXPROCS suffix of a benchmark
// name, or "" when absent.
func lastDashSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
