// Command benchjson converts `go test -bench` text output into a JSON
// summary, so CI can archive benchmark smoke runs as machine-readable
// artifacts (make bench → BENCH_pr6.json) without external tooling.
//
// With -gate it instead compares the run against a checked-in baseline and
// fails on regression. Allocation counts and bytes/op are near-deterministic
// here (the simulations are seeded), so their tolerance bands are tight; wall
// time is noisy on shared CI machines, so its band is a wide catastrophe
// detector (an O(1) path decaying to O(n) trips it, scheduler jitter does
// not). A benchmark present in the baseline but missing from the run is a
// failure — deleting a benchmark must be an explicit baseline update.
//
// Custom b.ReportMetric series (anything that is not ns/op, B/op, or
// allocs/op) are archived in the JSON under "metrics". They are gated only
// when named by a repeatable -metric unit=ratio,slack flag — e.g.
// `-metric bytes/lpage=1.10,1.0` fails the build when the per-logical-page
// metadata footprint grows 10% past the baseline. A repeatable
// -min-metric unit=value flag gates a custom unit against an absolute
// floor instead of the baseline — e.g. `-min-metric size-x=10` fails when
// any benchmark reports size-x below 10, or when no benchmark reports it
// at all (deleting the measuring benchmark must not green the gate).
//
// Runs produced with `go test -count=N` repeat each benchmark name; the
// parser aggregates repeats into one Result whose headline numbers are the
// per-metric means and whose "samples" array keeps the raw values. With
// -compare the tool prints a benchstat-style table against the baseline
// instead of gating: per-metric old/new means, delta, and a two-sided
// Mann–Whitney U p-value (delta is shown as ~ when p > 0.05 or when either
// side has too few samples to resolve significance). -compare is a report,
// not a gate: it always exits 0.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./ci/benchjson -out BENCH.json
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json -update-baseline
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json -metric bytes/lpage=1.10,1.0
//	go run ./ci/benchjson -in bench.out -gate -baseline ci/bench-baseline.json -min-metric size-x=10
//	go test -bench=. -count=8 . | go run ./ci/benchjson -compare -baseline ci/bench-baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples holds the raw per-repeat values (unit → values) when the
	// input ran with -count > 1. The headline fields above are then the
	// per-unit means; -compare consumes the samples for p-values.
	Samples map[string][]float64 `json:"samples,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "-", "benchmark text output to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	gate := flag.Bool("gate", false, "compare against -baseline instead of emitting JSON; exit 1 on regression")
	baseline := flag.String("baseline", "", "baseline JSON file for -gate")
	update := flag.Bool("update-baseline", false, "with -gate: overwrite the baseline with this run and exit 0")
	nsRatio := flag.Float64("ns-ratio", 4.0, "gate: fail when ns/op exceeds baseline*ratio+slack")
	nsSlack := flag.Float64("ns-slack", 200, "gate: absolute ns/op slack added to the ratio band")
	bRatio := flag.Float64("bytes-ratio", 1.15, "gate: fail when B/op exceeds baseline*ratio+slack")
	bSlack := flag.Float64("bytes-slack", 512, "gate: absolute B/op slack added to the ratio band")
	aRatio := flag.Float64("allocs-ratio", 1.10, "gate: fail when allocs/op exceeds baseline*ratio+slack")
	aSlack := flag.Float64("allocs-slack", 2, "gate: absolute allocs/op slack added to the ratio band")
	metrics := metricBands{}
	flag.Var(metrics, "metric", "gate a custom b.ReportMetric unit as unit=ratio,slack "+
		"(e.g. -metric bytes/lpage=1.10,1.0); repeatable")
	mins := minBounds{}
	flag.Var(mins, "min-metric", "gate: fail when any benchmark reports this custom unit below "+
		"the absolute floor, as unit=value (e.g. -min-metric size-x=10); repeatable")
	compareM := flag.Bool("compare", false, "print a benchstat-style comparison against -baseline "+
		"(Mann–Whitney U p-values; needs -count>1 samples on both sides) and exit 0")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	results = aggregate(results)

	if *compareM {
		if *baseline == "" {
			log.Fatal("-compare requires -baseline")
		}
		base, err := readBaseline(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		writeComparison(os.Stdout, base, results)
		return
	}

	if *gate {
		if *baseline == "" {
			log.Fatal("-gate requires -baseline")
		}
		if *update {
			if err := writeJSON(*baseline, results); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s updated with %d benchmarks\n", *baseline, len(results))
			return
		}
		base, err := readBaseline(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		tol := tolerances{
			ns:      band{*nsRatio, *nsSlack},
			bytes:   band{*bRatio, *bSlack},
			allocs:  band{*aRatio, *aSlack},
			metrics: metrics,
		}
		failures, notes := compare(base, results, tol)
		failures = append(failures, checkMins(results, mins)...)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "benchjson: note: %s\n", n)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", f)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s (rerun with -update-baseline after an intentional change)\n",
				len(failures), *baseline)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within tolerance of %s\n", len(results), *baseline)
		return
	}

	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}

// band is one tolerance: the current value may not exceed
// baseline*Ratio + Slack. The slack term keeps tiny baselines from turning
// the ratio into a zero-tolerance gate (0 B/op * any ratio is still 0).
type band struct {
	Ratio float64
	Slack float64
}

func (b band) limit(base float64) float64 { return base*b.Ratio + b.Slack }

// metricBands maps a custom b.ReportMetric unit (e.g. "bytes/lpage") to
// its gate band. It implements flag.Value so -metric is repeatable.
type metricBands map[string]band

func (m metricBands) String() string {
	var parts []string
	for unit, b := range m {
		parts = append(parts, fmt.Sprintf("%s=%g,%g", unit, b.Ratio, b.Slack))
	}
	return strings.Join(parts, " ")
}

func (m metricBands) Set(s string) error {
	unit, spec, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=ratio,slack, got %q", s)
	}
	ratioStr, slackStr, ok := strings.Cut(spec, ",")
	if !ok {
		return fmt.Errorf("want unit=ratio,slack, got %q", s)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil {
		return fmt.Errorf("ratio in %q: %v", s, err)
	}
	slack, err := strconv.ParseFloat(slackStr, 64)
	if err != nil {
		return fmt.Errorf("slack in %q: %v", s, err)
	}
	m[unit] = band{ratio, slack}
	return nil
}

// minBounds maps a custom b.ReportMetric unit to an absolute floor the
// current run must meet, baseline-free. It implements flag.Value so
// -min-metric is repeatable.
type minBounds map[string]float64

func (m minBounds) String() string {
	var parts []string
	for unit, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", unit, v))
	}
	return strings.Join(parts, " ")
}

func (m minBounds) Set(s string) error {
	unit, valStr, ok := strings.Cut(s, "=")
	if !ok || unit == "" {
		return fmt.Errorf("want unit=value, got %q", s)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("value in %q: %v", s, err)
	}
	m[unit] = v
	return nil
}

// checkMins enforces the -min-metric floors: every benchmark reporting a
// gated unit must meet its floor, and each gated unit must be reported by
// at least one benchmark (so deleting the measuring benchmark cannot turn
// the gate green).
func checkMins(cur []Result, mins minBounds) (failures []string) {
	units := make([]string, 0, len(mins))
	for unit := range mins {
		units = append(units, unit)
	}
	sort.Strings(units)
	for _, unit := range units {
		floor := mins[unit]
		reported := false
		for _, c := range cur {
			v, ok := c.Metrics[unit]
			if !ok {
				continue
			}
			reported = true
			if v < floor {
				failures = append(failures, fmt.Sprintf("%s: %s %.6g below required minimum %.6g",
					c.Name, unit, v, floor))
			}
		}
		if !reported {
			failures = append(failures, fmt.Sprintf("no benchmark reports gated metric %s (floor %.6g)", unit, floor))
		}
	}
	return failures
}

// tolerances groups the per-metric bands. metrics gates custom units from
// Result.Metrics; units without an entry are archived but not gated.
type tolerances struct {
	ns, bytes, allocs band
	metrics           metricBands
}

// compare checks every baseline benchmark against the current run. It
// returns regression messages (gate failures) and informational notes
// (benchmarks new in this run, which only an -update-baseline records).
func compare(base, cur []Result, tol tolerances) (failures, notes []string) {
	curByName := make(map[string]Result, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base))
	for _, b := range base {
		baseNames[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", b.Name))
			continue
		}
		check := func(metric string, baseV, curV float64, band band) {
			if limit := band.limit(baseV); curV > limit {
				failures = append(failures, fmt.Sprintf("%s: %s %.6g exceeds %.6g (baseline %.6g × %g + %g)",
					b.Name, metric, curV, limit, baseV, band.Ratio, band.Slack))
			}
		}
		check("ns/op", b.NsPerOp, c.NsPerOp, tol.ns)
		check("B/op", b.BytesPerOp, c.BytesPerOp, tol.bytes)
		check("allocs/op", b.AllocsOp, c.AllocsOp, tol.allocs)
		for unit, band := range tol.metrics {
			baseV, inBase := b.Metrics[unit]
			if !inBase {
				continue // unit not recorded for this benchmark
			}
			curV, inCur := c.Metrics[unit]
			if !inCur {
				failures = append(failures, fmt.Sprintf("%s: gated metric %s in baseline but missing from this run", b.Name, unit))
				continue
			}
			check(unit, baseV, curV, band)
		}
	}
	for _, c := range cur {
		if !baseNames[c.Name] {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (run -update-baseline to record it)", c.Name))
		}
	}
	return failures, notes
}

// readBaseline loads a JSON file previously written by this tool.
func readBaseline(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(b, &results); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return results, nil
}

// writeJSON writes results as indented JSON to path.
func writeJSON(path string, results []Result) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// aggregate merges repeated benchmark names (go test -count=N) into one
// Result per name: headline fields become per-unit means and the raw
// repeats are kept under Samples. Singletons pass through untouched, so
// count=1 runs produce the same JSON as before.
func aggregate(results []Result) []Result {
	index := make(map[string]int, len(results))
	var out []Result
	for _, r := range results {
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		a := &out[i]
		if a.Samples == nil {
			a.Samples = map[string][]float64{
				"ns/op":     {a.NsPerOp},
				"B/op":      {a.BytesPerOp},
				"allocs/op": {a.AllocsOp},
			}
			for unit, v := range a.Metrics {
				a.Samples[unit] = []float64{v}
			}
		}
		a.Iterations += r.Iterations
		a.Samples["ns/op"] = append(a.Samples["ns/op"], r.NsPerOp)
		a.Samples["B/op"] = append(a.Samples["B/op"], r.BytesPerOp)
		a.Samples["allocs/op"] = append(a.Samples["allocs/op"], r.AllocsOp)
		for unit, v := range r.Metrics {
			a.Samples[unit] = append(a.Samples[unit], v)
		}
		a.NsPerOp = mean(a.Samples["ns/op"])
		a.BytesPerOp = mean(a.Samples["B/op"])
		a.AllocsOp = mean(a.Samples["allocs/op"])
		for unit := range a.Metrics {
			a.Metrics[unit] = mean(a.Samples[unit])
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// samplesOf returns the raw repeats for one unit, falling back to the
// headline value as a single sample for count=1 runs and old baselines.
func samplesOf(r Result, unit string) []float64 {
	if s, ok := r.Samples[unit]; ok && len(s) > 0 {
		return s
	}
	switch unit {
	case "ns/op":
		return []float64{r.NsPerOp}
	case "B/op":
		return []float64{r.BytesPerOp}
	case "allocs/op":
		return []float64{r.AllocsOp}
	}
	if v, ok := r.Metrics[unit]; ok {
		return []float64{v}
	}
	return nil
}

// writeComparison prints a benchstat-style table per metric unit: old and
// new means, relative delta, and a two-sided Mann–Whitney U p-value. A
// delta is only asserted when p ≤ 0.05; otherwise the row shows ~
// (statistically indistinguishable, or too few samples to tell).
func writeComparison(w io.Writer, base, cur []Result) {
	baseByName := make(map[string]Result, len(base))
	for _, b := range base {
		baseByName[b.Name] = b
	}

	// Stable unit order: the standard trio first, then custom units sorted.
	units := []string{"ns/op", "B/op", "allocs/op"}
	custom := map[string]bool{}
	for _, rs := range [][]Result{base, cur} {
		for _, r := range rs {
			for unit := range r.Metrics {
				custom[unit] = true
			}
		}
	}
	var customUnits []string
	for unit := range custom {
		customUnits = append(customUnits, unit)
	}
	sort.Strings(customUnits)
	units = append(units, customUnits...)

	for _, unit := range units {
		type row struct {
			name               string
			oldMean, newMean   float64
			delta, p           float64
			nOld, nNew         int
			significant, valid bool
		}
		var rows []row
		for _, c := range cur {
			b, ok := baseByName[c.Name]
			if !ok {
				continue
			}
			olds, news := samplesOf(b, unit), samplesOf(c, unit)
			if len(olds) == 0 || len(news) == 0 {
				continue
			}
			om, nm := mean(olds), mean(news)
			if unit != "ns/op" && om == 0 && nm == 0 {
				continue // unit not meaningful for this benchmark
			}
			r := row{name: c.Name, oldMean: om, newMean: nm, nOld: len(olds), nNew: len(news), valid: true}
			if om != 0 {
				r.delta = (nm - om) / om * 100
			}
			r.p = mannWhitneyU(olds, news)
			r.significant = !math.IsNaN(r.p) && r.p <= 0.05
			rows = append(rows, r)
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-44s %14s %14s %9s %9s\n", "name ("+unit+")", "old", "new", "delta", "p")
		for _, r := range rows {
			delta := "~"
			if r.significant {
				delta = fmt.Sprintf("%+.2f%%", r.delta)
			}
			p := "n/a"
			if !math.IsNaN(r.p) {
				p = fmt.Sprintf("%.3f", r.p)
			}
			fmt.Fprintf(w, "%-44s %14.6g %14.6g %9s %9s\n", r.name, r.oldMean, r.newMean, delta, p)
		}
		fmt.Fprintln(w)
	}
}

// mannWhitneyU returns the two-sided p-value of the Mann–Whitney U test
// (normal approximation with tie correction and continuity correction)
// that x and y are drawn from the same distribution. It returns NaN when
// either sample is too small for the approximation to mean anything
// (n < 4, where even a perfect separation cannot reach p ≤ 0.05), and 1
// when every value is tied.
func mannWhitneyU(x, y []float64) float64 {
	n1, n2 := len(x), len(y)
	if n1 < 4 || n2 < 4 {
		return math.NaN()
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate the tie correction term Σ(t³−t).
	n := n1 + n2
	var rankSumX, tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankSumX += rank
			}
		}
		tieTerm += t*t*t - t
		i = j
	}

	u := rankSumX - float64(n1)*float64(n1+1)/2
	muU := float64(n1) * float64(n2) / 2
	nf := float64(n)
	variance := float64(n1) * float64(n2) / 12 * (nf + 1 - tieTerm/(nf*(nf-1)))
	if variance <= 0 {
		return 1 // all values tied: no evidence of any difference
	}
	z := u - muU
	switch { // continuity correction toward the mean
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	return math.Erfc(math.Abs(z) / math.Sqrt2) // 2 × upper tail of N(0,1)
}

// parse extracts Benchmark lines of the form
//
//	BenchmarkName-8   12  93451 ns/op  4.5 req/s  120 B/op  3 allocs/op
//
// Pairs are (value, unit); unknown units land in Metrics.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "BenchmarkX ... FAIL" line
		}
		name := fields[0]
		if s := lastDashSuffix(name); s != "" {
			name = strings.TrimSuffix(name, "-"+s)
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// lastDashSuffix returns the trailing -N GOMAXPROCS suffix of a benchmark
// name, or "" when absent.
func lastDashSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
