// Command benchjson converts `go test -bench` text output into a JSON
// summary, so CI can archive benchmark smoke runs as machine-readable
// artifacts (make bench → BENCH_pr3.json) without external tooling.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./ci/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric series (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	in := flag.String("in", "-", "benchmark text output to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}

// parse extracts Benchmark lines of the form
//
//	BenchmarkName-8   12  93451 ns/op  4.5 req/s  120 B/op  3 allocs/op
//
// Pairs are (value, unit); unknown units land in Metrics.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "BenchmarkX ... FAIL" line
		}
		name := fields[0]
		if s := lastDashSuffix(name); s != "" {
			name = strings.TrimSuffix(name, "-"+s)
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// lastDashSuffix returns the trailing -N GOMAXPROCS suffix of a benchmark
// name, or "" when absent.
func lastDashSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return ""
	}
	return suffix
}
