package main

import (
	"strings"
	"testing"
)

var testTol = tolerances{
	ns:     band{4.0, 200},
	bytes:  band{1.15, 512},
	allocs: band{1.10, 2},
}

func TestCompareWithinTolerance(t *testing.T) {
	base := []Result{{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10}}
	cur := []Result{{Name: "BenchmarkWrite", NsPerOp: 350, BytesPerOp: 1100, AllocsOp: 11}}
	failures, notes := compare(base, cur, testTol)
	if len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}
	if len(notes) != 0 {
		t.Errorf("unexpected notes: %v", notes)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := []Result{{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10}}
	cases := []struct {
		name string
		cur  Result
		want string
	}{
		{"ns blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100*4 + 201, BytesPerOp: 1000, AllocsOp: 10}, "ns/op"},
		{"bytes blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000*1.15 + 513, AllocsOp: 10}, "B/op"},
		{"allocs blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 14}, "allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures, _ := compare(base, []Result{tc.cur}, testTol)
			if len(failures) != 1 || !strings.Contains(failures[0], tc.want) {
				t.Errorf("failures = %v, want one mentioning %q", failures, tc.want)
			}
		})
	}
}

// TestCompareZeroBaseline pins the slack semantics: a zero-alloc baseline
// still admits the absolute slack, and nothing more.
func TestCompareZeroBaseline(t *testing.T) {
	base := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 0, AllocsOp: 0}}
	ok := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 512, AllocsOp: 2}}
	if failures, _ := compare(base, ok, testTol); len(failures) != 0 {
		t.Errorf("slack not admitted: %v", failures)
	}
	bad := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 0, AllocsOp: 3}}
	if failures, _ := compare(base, bad, testTol); len(failures) != 1 {
		t.Errorf("alloc regression past slack not caught: %v", failures)
	}
}

// TestCompareCustomMetricGate pins the -metric semantics: a configured
// unit is gated with its own band, an unconfigured unit is archived but
// ignored, and a gated unit that disappears from the run is a failure.
func TestCompareCustomMetricGate(t *testing.T) {
	tol := testTol
	tol.metrics = metricBands{"bytes/lpage": {1.10, 1.0}}
	base := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1, "req/s": 5}}}

	within := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1*1.10 + 0.9, "req/s": 500}}}
	if failures, _ := compare(base, within, tol); len(failures) != 0 {
		t.Errorf("within-band metric failed: %v", failures)
	}

	over := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1*1.10 + 1.1, "req/s": 5}}}
	failures, _ := compare(base, over, tol)
	if len(failures) != 1 || !strings.Contains(failures[0], "bytes/lpage") {
		t.Errorf("over-band metric not failed: %v", failures)
	}

	gone := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"req/s": 5}}}
	failures, _ = compare(base, gone, tol)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from this run") {
		t.Errorf("vanished gated metric not failed: %v", failures)
	}
}

// TestMetricBandsSet covers the unit=ratio,slack parser, including units
// that themselves contain '/' and '='-free garbage.
func TestMetricBandsSet(t *testing.T) {
	m := metricBands{}
	if err := m.Set("bytes/lpage=1.10,1.0"); err != nil {
		t.Fatal(err)
	}
	if got := m["bytes/lpage"]; got != (band{1.10, 1.0}) {
		t.Errorf("parsed band = %+v", got)
	}
	for _, bad := range []string{"bytes/lpage", "bytes/lpage=1.10", "=1,2", "u=x,1", "u=1,y"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := []Result{{Name: "BenchmarkGone", NsPerOp: 1}}
	cur := []Result{{Name: "BenchmarkNew", NsPerOp: 1}}
	failures, notes := compare(base, cur, testTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from this run") {
		t.Errorf("missing benchmark not failed: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not in baseline") {
		t.Errorf("new benchmark not noted: %v", notes)
	}
}

func TestParseBenchLine(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkVictimSelect/greedy/blocks=512-8   	89750644	         2.584 ns/op	       0 B/op	       0 allocs/op
BenchmarkCustom-8	10	5.0 ns/op	2.5 req/s
`)
	results, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkVictimSelect/greedy/blocks=512" || r.NsPerOp != 2.584 ||
		r.BytesPerOp != 0 || r.AllocsOp != 0 {
		t.Errorf("first result = %+v", r)
	}
	if results[1].Metrics["req/s"] != 2.5 {
		t.Errorf("custom metric lost: %+v", results[1])
	}
}
