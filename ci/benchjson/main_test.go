package main

import (
	"math"
	"strings"
	"testing"
)

var testTol = tolerances{
	ns:     band{4.0, 200},
	bytes:  band{1.15, 512},
	allocs: band{1.10, 2},
}

func TestCompareWithinTolerance(t *testing.T) {
	base := []Result{{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10}}
	cur := []Result{{Name: "BenchmarkWrite", NsPerOp: 350, BytesPerOp: 1100, AllocsOp: 11}}
	failures, notes := compare(base, cur, testTol)
	if len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}
	if len(notes) != 0 {
		t.Errorf("unexpected notes: %v", notes)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := []Result{{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10}}
	cases := []struct {
		name string
		cur  Result
		want string
	}{
		{"ns blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100*4 + 201, BytesPerOp: 1000, AllocsOp: 10}, "ns/op"},
		{"bytes blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000*1.15 + 513, AllocsOp: 10}, "B/op"},
		{"allocs blowup", Result{Name: "BenchmarkWrite", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 14}, "allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures, _ := compare(base, []Result{tc.cur}, testTol)
			if len(failures) != 1 || !strings.Contains(failures[0], tc.want) {
				t.Errorf("failures = %v, want one mentioning %q", failures, tc.want)
			}
		})
	}
}

// TestCompareZeroBaseline pins the slack semantics: a zero-alloc baseline
// still admits the absolute slack, and nothing more.
func TestCompareZeroBaseline(t *testing.T) {
	base := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 0, AllocsOp: 0}}
	ok := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 512, AllocsOp: 2}}
	if failures, _ := compare(base, ok, testTol); len(failures) != 0 {
		t.Errorf("slack not admitted: %v", failures)
	}
	bad := []Result{{Name: "BenchmarkZero", NsPerOp: 3, BytesPerOp: 0, AllocsOp: 3}}
	if failures, _ := compare(base, bad, testTol); len(failures) != 1 {
		t.Errorf("alloc regression past slack not caught: %v", failures)
	}
}

// TestCompareCustomMetricGate pins the -metric semantics: a configured
// unit is gated with its own band, an unconfigured unit is archived but
// ignored, and a gated unit that disappears from the run is a failure.
func TestCompareCustomMetricGate(t *testing.T) {
	tol := testTol
	tol.metrics = metricBands{"bytes/lpage": {1.10, 1.0}}
	base := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1, "req/s": 5}}}

	within := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1*1.10 + 0.9, "req/s": 500}}}
	if failures, _ := compare(base, within, tol); len(failures) != 0 {
		t.Errorf("within-band metric failed: %v", failures)
	}

	over := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"bytes/lpage": 9.1*1.10 + 1.1, "req/s": 5}}}
	failures, _ := compare(base, over, tol)
	if len(failures) != 1 || !strings.Contains(failures[0], "bytes/lpage") {
		t.Errorf("over-band metric not failed: %v", failures)
	}

	gone := []Result{{Name: "BenchmarkFTLMemoryFootprint", NsPerOp: 100,
		Metrics: map[string]float64{"req/s": 5}}}
	failures, _ = compare(base, gone, tol)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from this run") {
		t.Errorf("vanished gated metric not failed: %v", failures)
	}
}

// TestMetricBandsSet covers the unit=ratio,slack parser, including units
// that themselves contain '/' and '='-free garbage.
func TestMetricBandsSet(t *testing.T) {
	m := metricBands{}
	if err := m.Set("bytes/lpage=1.10,1.0"); err != nil {
		t.Fatal(err)
	}
	if got := m["bytes/lpage"]; got != (band{1.10, 1.0}) {
		t.Errorf("parsed band = %+v", got)
	}
	for _, bad := range []string{"bytes/lpage", "bytes/lpage=1.10", "=1,2", "u=x,1", "u=1,y"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := []Result{{Name: "BenchmarkGone", NsPerOp: 1}}
	cur := []Result{{Name: "BenchmarkNew", NsPerOp: 1}}
	failures, notes := compare(base, cur, testTol)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from this run") {
		t.Errorf("missing benchmark not failed: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not in baseline") {
		t.Errorf("new benchmark not noted: %v", notes)
	}
}

// TestCheckMins pins the -min-metric semantics: below-floor values fail,
// at-floor values pass, and a gated unit that no benchmark reports is
// itself a failure.
func TestCheckMins(t *testing.T) {
	cur := []Result{
		{Name: "BenchmarkBinlogVsJSONL", Metrics: map[string]float64{"size-x": 10.7, "speed-x": 5.9}},
		{Name: "BenchmarkOther", NsPerOp: 5},
	}
	if failures := checkMins(cur, minBounds{"size-x": 10, "speed-x": 5}); len(failures) != 0 {
		t.Errorf("passing run failed: %v", failures)
	}
	failures := checkMins(cur, minBounds{"size-x": 11})
	if len(failures) != 1 || !strings.Contains(failures[0], "size-x") ||
		!strings.Contains(failures[0], "below required minimum") {
		t.Errorf("below-floor value not failed: %v", failures)
	}
	failures = checkMins(cur, minBounds{"waf-x": 2})
	if len(failures) != 1 || !strings.Contains(failures[0], "no benchmark reports") {
		t.Errorf("unreported gated unit not failed: %v", failures)
	}
}

func TestMinBoundsSet(t *testing.T) {
	m := minBounds{}
	if err := m.Set("size-x=10"); err != nil {
		t.Fatal(err)
	}
	if m["size-x"] != 10 {
		t.Errorf("parsed floor = %v", m["size-x"])
	}
	for _, bad := range []string{"size-x", "=10", "size-x=ten"} {
		if err := m.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestAggregateRepeats pins the -count>1 handling: repeats of one name
// collapse into one Result with mean headline values and raw samples,
// while singletons keep their original sample-free JSON shape.
func TestAggregateRepeats(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", Iterations: 10, NsPerOp: 100, BytesPerOp: 8, AllocsOp: 1,
			Metrics: map[string]float64{"size-x": 10}},
		{Name: "BenchmarkSingle", Iterations: 3, NsPerOp: 7},
		{Name: "BenchmarkA", Iterations: 20, NsPerOp: 200, BytesPerOp: 8, AllocsOp: 1,
			Metrics: map[string]float64{"size-x": 12}},
	}
	out := aggregate(in)
	if len(out) != 2 {
		t.Fatalf("aggregated to %d results, want 2", len(out))
	}
	a := out[0]
	if a.Name != "BenchmarkA" || a.Iterations != 30 || a.NsPerOp != 150 ||
		a.BytesPerOp != 8 || a.AllocsOp != 1 || a.Metrics["size-x"] != 11 {
		t.Errorf("aggregate headline = %+v", a)
	}
	if got := a.Samples["ns/op"]; len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("ns/op samples = %v", got)
	}
	if got := a.Samples["size-x"]; len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Errorf("size-x samples = %v", got)
	}
	if out[1].Samples != nil {
		t.Errorf("singleton grew samples: %+v", out[1])
	}
}

// TestMannWhitneyU sanity-checks the p-value at the points that matter for
// the compare report: clearly separated samples are significant, identical
// samples are not, and undersized samples return NaN.
func TestMannWhitneyU(t *testing.T) {
	low := []float64{10, 11, 12, 13, 11.5, 10.5, 12.5, 11.2}
	high := []float64{20, 21, 22, 23, 21.5, 20.5, 22.5, 21.2}
	if p := mannWhitneyU(low, high); !(p <= 0.05) {
		t.Errorf("separated samples: p = %v, want ≤ 0.05", p)
	}
	if p := mannWhitneyU(low, low); !(p > 0.05) {
		t.Errorf("identical samples: p = %v, want > 0.05", p)
	}
	tied := []float64{5, 5, 5, 5, 5}
	if p := mannWhitneyU(tied, tied); p != 1 {
		t.Errorf("all-tied samples: p = %v, want 1", p)
	}
	if p := mannWhitneyU([]float64{1, 2, 3}, high); !math.IsNaN(p) {
		t.Errorf("undersized sample: p = %v, want NaN", p)
	}
	// Symmetry: argument order must not change the verdict.
	if p1, p2 := mannWhitneyU(low, high), mannWhitneyU(high, low); math.Abs(p1-p2) > 1e-12 {
		t.Errorf("asymmetric p-values: %v vs %v", p1, p2)
	}
}

// TestWriteComparison exercises the benchstat-style report end to end:
// significant rows get a signed delta, insignificant or undersampled rows
// show ~, and benchmarks absent from the baseline are skipped.
func TestWriteComparison(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkFast", NsPerOp: 100,
			Samples: map[string][]float64{"ns/op": {99, 100, 101, 100, 99.5, 100.5, 100.2, 99.8}}},
		{Name: "BenchmarkSingleShot", NsPerOp: 50},
	}
	cur := []Result{
		{Name: "BenchmarkFast", NsPerOp: 80,
			Samples: map[string][]float64{"ns/op": {79, 80, 81, 80, 79.5, 80.5, 80.2, 79.8}}},
		{Name: "BenchmarkSingleShot", NsPerOp: 49},
		{Name: "BenchmarkNew", NsPerOp: 1},
	}
	var buf strings.Builder
	writeComparison(&buf, base, cur)
	out := buf.String()
	if !strings.Contains(out, "BenchmarkFast") || !strings.Contains(out, "-20.00%") {
		t.Errorf("significant improvement not reported:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkSingleShot") || !strings.Contains(out, "n/a") {
		t.Errorf("single-sample row should show p=n/a:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkNew") {
		t.Errorf("benchmark missing from baseline should be skipped:\n%s", out)
	}
}

func TestParseBenchLine(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkVictimSelect/greedy/blocks=512-8   	89750644	         2.584 ns/op	       0 B/op	       0 allocs/op
BenchmarkCustom-8	10	5.0 ns/op	2.5 req/s
`)
	results, err := parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkVictimSelect/greedy/blocks=512" || r.NsPerOp != 2.584 ||
		r.BytesPerOp != 0 || r.AllocsOp != 0 {
		t.Errorf("first result = %+v", r)
	}
	if results[1].Metrics["req/s"] != 2.5 {
		t.Errorf("custom metric lost: %+v", results[1])
	}
}
