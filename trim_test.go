package jitgc

import (
	"strings"
	"testing"

	"jitgc/internal/ftl"
	"jitgc/internal/metrics"
)

// TestTrimPointInsideFrankieBracket is the committed cross-validation from
// the issue: at every swept TRIM intensity the measured steady-state WAF
// must fall inside Frankie et al.'s analytic bracket — the greedy curve at
// the TRIM-reduced live footprint from below, the Li/Lee/Lui-style
// mean-field fixed point at the same footprint from above (with the same
// 5% slack the untrimmed scale experiment allows its bracket).
func TestTrimPointInsideFrankieBracket(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state sweep needs ~5 device passes per intensity; skipped in -short")
	}
	prevWAF := 0.0
	for i, q := range trimIntensities {
		r, err := RunTrimPoint(q, 1)
		if err != nil {
			t.Fatalf("q=%.2f: %v", q, err)
		}
		if r.WAF < r.GreedyWAF*0.95 || r.WAF > r.MeanFieldWAF*1.05 {
			t.Errorf("q=%.2f: WAF %.3f outside Frankie bracket [%.3f, %.3f]",
				q, r.WAF, r.GreedyWAF, r.MeanFieldWAF)
		}
		// The paper-level claim: TRIM collapses WAF monotonically.
		if i > 0 && r.WAF > prevWAF {
			t.Errorf("q=%.2f: WAF rose to %.3f from %.3f at the previous intensity",
				q, r.WAF, prevWAF)
		}
		prevWAF = r.WAF
		// The steering must actually have held the trimmed fraction: the
		// measured live footprint matches (1-q)·ws within one percent.
		want := metrics.TrimmedLivePages(r.WorkingSetPages, q)
		if diff := r.MappedPages - want; diff > want/100 || diff < -want/100 {
			t.Errorf("q=%.2f: mapped %d pages, steering target %d", q, r.MappedPages, want)
		}
	}
}

func TestRunTrimPointRejectsBadIntensity(t *testing.T) {
	for _, q := range []float64{-0.1, 1, 1.5} {
		if _, err := RunTrimPoint(q, 1); err == nil {
			t.Errorf("intensity %v accepted", q)
		}
	}
}

// TestTrimProfileRunEndToEnd checks the full wiring: Options.HostProfile
// routes generation to the TRIM-rich profiles, the simulator forwards
// discards to the FTL and the TRIM-OP policy, and the results surface the
// trimmed and live footprints.
func TestTrimProfileRunEndToEnd(t *testing.T) {
	opt := Options{Seed: 1, Ops: 3000, HostProfile: "churn", TrimRate: 0.30}
	res, err := Run("churn", TrimOP(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "TRIM-OP" {
		t.Errorf("policy = %q, want TRIM-OP", res.Policy)
	}
	if res.TrimmedPages == 0 {
		t.Error("churn profile at q=0.30 produced no device TRIMs")
	}
	if res.MappedPages <= 0 {
		t.Errorf("MappedPages = %d, want positive live footprint", res.MappedPages)
	}
	total := ftl.DefaultConfig().Geometry.TotalPages()
	if res.MappedPages >= total {
		t.Errorf("MappedPages = %d, beyond device total %d", res.MappedPages, total)
	}

	// An unknown profile must fail loudly, not fall back to a benchmark.
	opt.HostProfile = "zfs"
	if _, err := Run("churn", TrimOP(), opt); err == nil {
		t.Error("unknown host profile accepted")
	}
}

// TestTrimGridTableShapes pins the grid renderer against hand-built cells,
// including the degenerate no-erase case.
func TestTrimGridTableShapes(t *testing.T) {
	cells := []trimCell{
		{profile: "churn", q: 0.15, res: Results{
			Policy: "A-BGC", WAF: 1.5, IOPS: 100, HostPrograms: 1000,
			Erases: 10, TrimmedPages: 50, MappedPages: 1000,
		}},
		{profile: "log", q: 0, res: Results{
			Policy: "JIT-GC", WAF: 1, IOPS: 200, HostPrograms: 500,
		}},
	}
	tb := trimGridTable(cells)
	s := tb.String()
	for _, want := range []string{"churn", "0.15", "A-BGC", "100.0", "log", "JIT-GC", "n/a"} {
		if !strings.Contains(s, want) {
			t.Errorf("grid table missing %q:\n%s", want, s)
		}
	}
}

// TestTrimValidationTableFlagsEscapes pins the bracket note: a row outside
// the Frankie bracket must warn (and so fail paperbench), a row inside
// must not.
func TestTrimValidationTableFlagsEscapes(t *testing.T) {
	inside := TrimPointResult{Q: 0.15, WAF: 1.6, GreedyWAF: 1.5, MeanFieldWAF: 1.75}
	outside := TrimPointResult{Q: 0.30, WAF: 2.4, GreedyWAF: 1.1, MeanFieldWAF: 1.4}
	tb := trimValidationTable([]TrimPointResult{inside, outside})
	s := tb.String()
	if !strings.Contains(s, "q=0.30") || len(tb.Notes) != 1 {
		t.Errorf("escaped row not flagged (notes %v):\n%s", tb.Notes, s)
	}
	if strings.Contains(strings.Join(tb.Notes, "\n"), "q=0.15") {
		t.Errorf("in-bracket row flagged: %v", tb.Notes)
	}
}
