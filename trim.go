package jitgc

import (
	"fmt"
	"math/rand"

	"jitgc/internal/ftl"
	"jitgc/internal/metrics"
)

// The trim experiment answers the ROADMAP's last open question: does
// JIT-GC's verdict survive on hosts that actually discard? It has two
// parts. The validation sweep drives the FTL directly with a steered
// trimmed fraction and checks the measured steady-state WAF against
// Frankie et al.'s analytic WAF-vs-effective-OP curve — the oracle that
// says TRIM inflates effective over-provisioning and collapses WAF along
// the greedy/mean-field bracket evaluated at the reduced live footprint.
// The policy grid then runs the TRIM-rich host profiles (file churn with
// discard-on-unlink, and the SSDFS-style append-only log) through the
// full simulator at each TRIM intensity under A-BGC, TRIM-OP and JIT-GC,
// reporting WAF/IOPS/lifetime next to the measured effective OP and the
// greedy model evaluated at it.

// trimIntensities is the swept steady-state trimmed share q.
var trimIntensities = []float64{0, 0.15, 0.30, 0.45}

// trimFillFraction is the share of user capacity the validation sweep's
// working set covers. 0.85 keeps the untrimmed effective OP small enough
// (≈ 0.26 with the default 7% physical OP) that the WAF collapse across
// the q sweep spans a wide, clearly resolved range.
const trimFillFraction = 0.85

// TrimPointResult is one row of the validation sweep.
type TrimPointResult struct {
	// Q is the steered trimmed fraction of the working set.
	Q float64
	// WorkingSetPages is the sweep's footprint; MappedPages the live pages
	// actually mapped at the end of the measured phase.
	WorkingSetPages, MappedPages int64
	// EffectiveOP is the measured (TotalPages - MappedPages) / MappedPages.
	EffectiveOP float64
	// WAF is the measured steady-state write amplification; GreedyWAF and
	// MeanFieldWAF are Frankie et al.'s analytic bracket at intensity Q.
	WAF, GreedyWAF, MeanFieldWAF float64
}

// RunTrimPoint drives the default device to steady state with uniform
// random writes over a fixed working set of which a steered fraction q is
// trimmed at any moment, and measures the steady-state WAF. Like the scale
// sweep it bypasses the page cache — the point is the GC process the
// analytic curve models — and is deterministic for a fixed seed.
func RunTrimPoint(q float64, seed int64) (TrimPointResult, error) {
	if q < 0 || q >= 1 {
		return TrimPointResult{}, fmt.Errorf("trim: intensity %v outside [0,1)", q)
	}
	cfg := ftl.DefaultConfig()
	cfg.DisableIntegrity = true
	f, err := ftl.New(cfg)
	if err != nil {
		return TrimPointResult{}, fmt.Errorf("trim q=%.2f: %w", q, err)
	}
	ws := int64(trimFillFraction * float64(f.UserPages()))
	target := int64(q * float64(ws))
	rng := rand.New(rand.NewSource(seed))

	// Phase 1 — sequential fill of the working set.
	for lpn := int64(0); lpn < ws; lpn++ {
		if _, _, err := f.Write(lpn); err != nil {
			return TrimPointResult{}, fmt.Errorf("trim q=%.2f fill lpn %d: %w", q, lpn, err)
		}
	}

	// The steering rule keeps exactly ~target pages trimmed while the
	// trimmed set itself churns: a trimmed page that is picked again is
	// written back, an untrimmed pick is trimmed while below target and
	// overwritten otherwise. At steady state the device sees uniform random
	// writes over the working set with a stationary trimmed fraction q —
	// the regime Frankie et al.'s substitution models.
	trimmed := make([]bool, ws)
	var trimmedCount int64
	step := func() error {
		lpn := rng.Int63n(ws)
		switch {
		case trimmed[lpn]:
			trimmed[lpn] = false
			trimmedCount--
			_, _, err := f.Write(lpn)
			return err
		case trimmedCount < target:
			trimmed[lpn] = true
			trimmedCount++
			return f.Trim(lpn)
		default:
			_, _, err := f.Write(lpn)
			return err
		}
	}

	// Phase 2 — mixing until the valid-count distribution forgets the
	// sequential layout (two passes, as in the scale sweep).
	for i := int64(0); i < 2*ws; i++ {
		if err := step(); err != nil {
			return TrimPointResult{}, fmt.Errorf("trim q=%.2f mix: %w", q, err)
		}
	}
	// Phase 3 — measured steady state.
	f.ResetStats()
	for i := int64(0); i < ws/2; i++ {
		if err := step(); err != nil {
			return TrimPointResult{}, fmt.Errorf("trim q=%.2f measure: %w", q, err)
		}
	}

	total := cfg.Geometry.TotalPages()
	mapped := f.MappedPages()
	lo, hi := metrics.FrankieWAFBracket(total, ws, q)
	res := TrimPointResult{
		Q:               q,
		WorkingSetPages: ws,
		MappedPages:     mapped,
		WAF:             f.Stats().WAF(),
		GreedyWAF:       lo,
		MeanFieldWAF:    hi,
	}
	if mapped > 0 && total > mapped {
		res.EffectiveOP = float64(total-mapped) / float64(mapped)
	}
	return res, nil
}

// trimValidationTable renders the sweep rows, flagging any cell whose
// measured WAF escapes the Frankie bracket (which makes paperbench exit
// non-zero). Split from trimExp so the bracket logic is testable without
// re-running the steady-state sweep.
func trimValidationTable(rows []TrimPointResult) Table {
	t := Table{
		Title: "TRIM validation sweep: measured steady-state WAF vs Frankie effective-OP curve " +
			fmt.Sprintf("(uniform random writes over %.0f%% of user capacity, steered trimmed fraction)",
				100*trimFillFraction),
		Columns: []string{"q", "ws pages", "mapped", "eff. OP",
			"WAF", "Frankie greedy", "mean-field"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.2f", r.Q),
			fmt.Sprintf("%d", r.WorkingSetPages),
			fmt.Sprintf("%d", r.MappedPages),
			fmt.Sprintf("%.3f", r.EffectiveOP),
			fmt.Sprintf("%.3f", r.WAF),
			fmt.Sprintf("%.3f", r.GreedyWAF),
			fmt.Sprintf("%.3f", r.MeanFieldWAF))
		if r.WAF < r.GreedyWAF*0.95 || r.WAF > r.MeanFieldWAF*1.05 {
			t.AddNote("q=%.2f: WAF %.3f outside the Frankie bracket [%.3f, %.3f]",
				r.Q, r.WAF, r.GreedyWAF, r.MeanFieldWAF)
		}
	}
	t.AddInfo("Frankie et al.: a trimmed fraction q shrinks the live footprint to (1-q)·ws, " +
		"inflating effective OP; the greedy/mean-field bracket is evaluated at that footprint")
	return t
}

// trimGridProfiles and trimGridPolicies span the policy grid.
var (
	trimGridProfiles = []string{"churn", "log"}
	trimGridPolicies = []PolicySpec{Aggressive(), TrimOP(), JIT()}
)

// trimCell is one simulator run of the policy grid.
type trimCell struct {
	profile string
	q       float64
	res     Results
}

// trimExp runs the validation sweep and the host-profile × TRIM-intensity
// × policy grid. Every cell is seeded independently and written into a
// pre-indexed slot, so the report is byte-identical for any worker count.
func trimExp(opt Options) ([]Table, error) {
	opt = opt.withDefaults()

	valRows := make([]TrimPointResult, len(trimIntensities))
	cells := make([]trimCell, len(trimGridProfiles)*len(trimIntensities)*len(trimGridPolicies))
	nVal := len(valRows)
	err := runGrid(opt, nVal+len(cells), func(i int) error {
		if i < nVal {
			res, err := RunTrimPoint(trimIntensities[i], opt.Seed+int64(i))
			if err != nil {
				return err
			}
			valRows[i] = res
			return nil
		}
		c := i - nVal
		pi := c / (len(trimIntensities) * len(trimGridPolicies))
		qi := c / len(trimGridPolicies) % len(trimIntensities)
		ci := c % len(trimGridPolicies)
		cellOpt := opt
		cellOpt.HostProfile = trimGridProfiles[pi]
		cellOpt.TrimRate = trimIntensities[qi]
		res, err := Run(cellOpt.HostProfile, trimGridPolicies[ci], cellOpt)
		if err != nil {
			return fmt.Errorf("trim grid %s q=%.2f %s: %w",
				cellOpt.HostProfile, cellOpt.TrimRate, trimGridPolicies[ci].Kind, err)
		}
		cells[c] = trimCell{profile: cellOpt.HostProfile, q: cellOpt.TrimRate, res: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{trimValidationTable(valRows), trimGridTable(cells)}, nil
}

// trimGridTable renders the policy grid. The last two columns put the
// measured effective OP next to the greedy model evaluated at the measured
// live footprint — the per-cell Frankie reference for a workload whose
// trimmed share is emergent rather than steered.
func trimGridTable(cells []trimCell) Table {
	total := ftl.DefaultConfig().Geometry.TotalPages()
	t := Table{
		Title: "TRIM policy grid: host profile × TRIM intensity × policy",
		Columns: []string{"profile", "q", "policy", "WAF", "IOPS", "FGC",
			"trimmed pages", "erases", "host pages/erase", "eff. OP", "greedy@eff.OP"},
	}
	for _, c := range cells {
		r := c.res
		perErase := "n/a"
		if r.Erases > 0 {
			perErase = fmt.Sprintf("%.1f", float64(r.HostPrograms)/float64(r.Erases))
		}
		effOP, ref := "n/a", "n/a"
		if r.MappedPages > 0 && total > r.MappedPages {
			effOP = fmt.Sprintf("%.3f", float64(total-r.MappedPages)/float64(r.MappedPages))
			ref = fmt.Sprintf("%.3f", metrics.GreedyWAF(total, r.MappedPages))
		}
		t.AddRow(c.profile,
			fmt.Sprintf("%.2f", c.q),
			r.Policy,
			fmt.Sprintf("%.3f", r.WAF),
			fmt.Sprintf("%.0f", r.IOPS),
			fmt.Sprintf("%d", r.FGCInvocations),
			fmt.Sprintf("%d", r.TrimmedPages),
			fmt.Sprintf("%d", r.Erases),
			perErase,
			effOP, ref)
	}
	t.AddInfo("host pages/erase is the lifetime proxy (host data served per unit wear); " +
		"eff. OP is measured from the end-of-run live footprint, and greedy@eff.OP is " +
		"the Frankie greedy WAF at that footprint")
	return t
}
