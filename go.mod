module jitgc

go 1.24
