package jitgc

import (
	"fmt"
	"time"

	"jitgc/internal/tenant"
)

// MultiTenantResults is the record of an open-loop multi-tenant run: the
// shared device's own results plus per-tenant and per-class SLO verdicts,
// drop accounting, and the merged latency histogram.
type MultiTenantResults = tenant.Results

// TenantConfig selects the open-loop multi-tenant front end: N independent
// tenants with seeded arrival processes feed bounded queues, and a
// deficit-round-robin scheduler dispatches them to one shared device.
type TenantConfig struct {
	// Tenants is the number of traffic sources (default 1000).
	Tenants int
	// Arrival names the per-tenant arrival process: "poisson" (default),
	// "mmpp" (bursty), or "diurnal".
	Arrival string
	// Rate is each tenant's mean arrival rate in requests/second; 0 means
	// the moderate aggregate load (120 req/s) split evenly across tenants.
	Rate float64
	// SLO is the silver-class p99.9 latency target (default 100 ms); gold
	// tightens it 4×, bronze relaxes it 5×.
	SLO time.Duration
	// QueueDepth bounds each tenant's admission queue (default 64).
	QueueDepth int
	// Quantum is the DRR base quantum in pages (default 8).
	Quantum int64
}

// withDefaults fills zero fields.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Tenants == 0 {
		c.Tenants = 1000
	}
	if c.Arrival == "" {
		c.Arrival = string(tenant.Poisson)
	}
	if c.Rate == 0 {
		c.Rate = moderateAggregateRate / float64(c.Tenants)
	}
	if c.SLO == 0 {
		c.SLO = 100 * time.Millisecond
	}
	return c
}

// Aggregate request rates of the -exp multitenant load levels, in req/s
// across all tenants. The device programs a direct page in ≈ 512 µs of
// occupancy (2 ms NAND program striped over 4 dies) and GC roughly doubles
// device page traffic, so "moderate" (≈120 req/s) leaves idle headroom for
// background GC while "heavy" (≈400 req/s) drives it to the edge of
// sustainability: queues grow, drops appear, and the GC policies separate —
// at 1000 tenants the smoothed aggregate leaves no idle gaps at all and
// every policy collapses into foreground collection.
const (
	moderateAggregateRate = 120
	heavyAggregateRate    = 400
)

// qosClasses derives the gold/silver/bronze ladder from the silver-class
// p99.9 target.
func qosClasses(slo time.Duration) []tenant.Class {
	return []tenant.Class{
		{Name: "gold", Weight: 4, SLO: slo / 4},
		{Name: "silver", Weight: 2, SLO: slo},
		{Name: "bronze", Weight: 1, SLO: 5 * slo},
	}
}

// RunMultiTenant executes the open-loop multi-tenant engine under the given
// policy. opt.Ops is the total request budget, split evenly across tenants;
// the working set defaults to half the user capacity, split into disjoint
// per-tenant slices. The write-back interval is left at whatever opt.Config
// carries (the experiment grid compresses it, like the array grid).
func RunMultiTenant(policy PolicySpec, tcfg TenantConfig, opt Options) (MultiTenantResults, error) {
	opt = opt.withDefaults()
	tcfg = tcfg.withDefaults()
	kind, err := tenant.ParseArrival(tcfg.Arrival)
	if err != nil {
		return MultiTenantResults{}, err
	}
	cfg, ws := opt.simConfig()
	ops := opt.Ops / tcfg.Tenants
	if ops < 1 {
		ops = 1
	}
	eng, err := tenant.New(tenant.Config{
		Tenants:         tcfg.Tenants,
		OpsPerTenant:    ops,
		Arrival:         kind,
		Rate:            tcfg.Rate,
		QueueDepth:      tcfg.QueueDepth,
		Quantum:         tcfg.Quantum,
		Classes:         qosClasses(tcfg.SLO),
		Seed:            opt.Seed,
		WorkingSetPages: ws,
		Device:          cfg,
	}, policy.Factory())
	if err != nil {
		return MultiTenantResults{}, err
	}
	res, err := eng.Run()
	if err != nil {
		return MultiTenantResults{}, err
	}
	res.Device.Workload = "multitenant"
	return res, nil
}

// The -exp multitenant grid: tenant count × arrival intensity × GC policy.
// MMPP arrivals throughout — bursty aggregates are where the paper's
// idle-gap reasoning is actually at risk.
var (
	mtTenantCounts = []int{100, 1000}
	mtLoads        = []struct {
		name      string
		aggregate float64
	}{
		{"moderate", moderateAggregateRate},
		{"heavy", heavyAggregateRate},
	}
	mtPolicies = []PolicySpec{Aggressive(), ADP(), JIT()}
)

// multitenantExp runs the open-loop QoS grid. Each cell splits opt.Ops over
// the cell's tenants and drives them to completion (every queue drained),
// so the per-tenant p99.9 verdicts cover the whole run including trailing
// backlog. Cells fan out over opt.Workers into pre-indexed slots.
func multitenantExp(opt Options) ([]Table, error) {
	perCount := len(mtLoads) * len(mtPolicies)
	slots := make([]MultiTenantResults, len(mtTenantCounts)*perCount)
	err := runGrid(opt, len(slots), func(i int) error {
		n := mtTenantCounts[i/perCount]
		load := mtLoads[(i%perCount)/len(mtPolicies)]
		pol := mtPolicies[i%len(mtPolicies)]
		cellOpt := opt.withDefaults()
		cfg := arrayDeviceConfig() // compressed write-back interval, same rationale
		cellOpt.Config = &cfg
		res, err := RunMultiTenant(pol, TenantConfig{
			Tenants: n,
			Arrival: string(tenant.MMPP),
			Rate:    load.aggregate / float64(n),
		}, cellOpt)
		if err != nil {
			return fmt.Errorf("multitenant %d×%s/%s: %w", n, load.name, pol.Kind, err)
		}
		slots[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := Table{
		Title: "Open-loop multi-tenant QoS: MMPP arrivals, DRR scheduling, per-tenant p99.9 SLO verdicts",
		Columns: []string{"tenants", "load", "policy", "served", "dropped", "p99 (ms)", "p99.9 (ms)",
			"SLO gold", "SLO silver", "SLO bronze", "FGC", "WAF"},
	}
	for i, res := range slots {
		n := mtTenantCounts[i/perCount]
		load := mtLoads[(i%perCount)/len(mtPolicies)]
		cells := []string{
			fmt.Sprintf("%d", n),
			load.name,
			res.Device.Policy,
			fmt.Sprintf("%d", res.Completed),
			fmt.Sprintf("%d", res.Dropped),
			fmt.Sprintf("%.1f", float64(res.Hist.Quantile(0.99))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(res.Hist.Quantile(0.999))/float64(time.Millisecond)),
		}
		for _, c := range res.PerClass {
			cells = append(cells, fmt.Sprintf("%d/%d", c.SLOMet, c.Tenants))
		}
		cells = append(cells,
			fmt.Sprintf("%d", res.Device.FGCInvocations),
			fmt.Sprintf("%.3f", res.Device.WAF))
		t.AddRow(cells...)
	}
	t.AddInfo("latencies include queue wait; SLO columns count tenants whose p99.9 met the class target")
	return []Table{t}, nil
}
