package jitgc_test

import (
	"fmt"
	"time"

	"jitgc"
	"jitgc/internal/core"
)

// ExampleRun shows the one-call API: run a benchmark under JIT-GC and read
// the headline metrics. Results are deterministic for a given seed.
func ExampleRun() {
	res, err := jitgc.Run("TPC-C", jitgc.JIT(), jitgc.Options{Seed: 1, Ops: 20000})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Workload, res.Policy, res.Requests)
	// Output: TPC-C JIT-GC 20000
}

// ExampleFig6Decisions reproduces the paper's Fig. 6 worked example: the
// manager skips BGC at t=10 and reclaims 12.5 MB at t=20.
func ExampleFig6Decisions() {
	at10, at20 := jitgc.Fig6Decisions()
	fmt.Printf("t=10s: %.1f MB\n", float64(at10)/1e6)
	fmt.Printf("t=20s: %.1f MB\n", float64(at20)/1e6)
	// Output:
	// t=10s: 0.0 MB
	// t=20s: 12.5 MB
}

// ExampleSchedule evaluates the pure just-in-time scheduling rule on the
// paper's Fig. 6(b) inputs.
func ExampleSchedule() {
	const mb = 1e6
	demand := []int64{5 * mb, 5 * mb, 25 * mb, 45 * mb, 5 * mb, 205 * mb}
	reclaim := core.Schedule(demand, 50*mb, 5*time.Second, 40*mb, 10*mb, 1)
	fmt.Printf("%.1f MB\n", float64(reclaim)/mb)
	// Output: 12.5 MB
}

// ExamplePolicySpec demonstrates the policy constructors matching the
// paper's configurations.
func ExamplePolicySpec() {
	for _, spec := range []jitgc.PolicySpec{
		jitgc.Lazy(), jitgc.Aggressive(), jitgc.Fixed(0.75), jitgc.ADP(), jitgc.JIT(),
	} {
		fmt.Println(spec.Kind)
	}
	// Output:
	// L-BGC
	// A-BGC
	// fixed
	// ADP-GC
	// JIT-GC
}

// ExampleBenchmarks lists the six paper benchmarks in evaluation order.
func ExampleBenchmarks() {
	for _, b := range jitgc.Benchmarks() {
		fmt.Println(b)
	}
	// Output:
	// YCSB
	// Postmark
	// Filebench
	// Bonnie++
	// Tiobench
	// TPC-C
}
